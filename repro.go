// Package repro is the public facade of this reproduction of
//
//	Glantz, Predari, Meyerhenke:
//	"Topology-induced Enhancement of Mappings", ICPP 2018.
//
// It wires together the substrates (graphs, processor topologies,
// partial-cube labelings, a multilevel partitioner, baseline mappers)
// around the paper's primary contribution, TIMER — a multi-hierarchical
// label-swapping enhancer for mappings of application graphs onto
// partial-cube processor topologies.
//
// A typical pipeline:
//
//	ga, _ := repro.GenerateNetwork("p2p-Gnutella", 0.25, 42) // or ReadGraph
//	topo, _ := repro.Grid(16, 16)
//	part, _ := repro.Partition(ga, topo.P(), 0.03, 42)
//	assign := repro.MapIdentity(part.Part)
//	res, _ := repro.Enhance(ga, topo, assign, repro.TimerOptions{NumHierarchies: 50, Seed: 42})
//	fmt.Println(res.CocoBefore, "->", res.CocoAfter)
//
// For long-lived, concurrent use, NewEngine wraps the same pipeline in
// the mapping engine: a shared topology cache, a worker-pool job queue
// and a batch runner (served over HTTP by cmd/mapd):
//
//	eng := repro.NewEngine(repro.EngineOptions{})
//	defer eng.Close()
//	job, _ := eng.Submit(repro.JobSpec{
//		Graph:    repro.GraphSpec{Network: "p2p-Gnutella", Scale: 0.25},
//		Topology: "grid:16x16",
//		Seed:     42,
//	})
//	done, _ := eng.Wait(job.ID)
//	fmt.Println(done.Result.CocoBefore, "->", done.Result.CocoAfter)
//
// See DESIGN.md for the system inventory and README.md for quickstarts
// covering the library, cmd/experiments (every table and figure of the
// paper) and the mapd service.
package repro

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/mapping"
	"repro/internal/netgen"
	"repro/internal/partition"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Re-exported types; see the internal packages for full documentation.
type (
	// Graph is a weighted undirected graph in CSR form.
	Graph = graph.Graph
	// Builder incrementally constructs a Graph.
	Builder = graph.Builder
	// Topology is a processor graph with its partial-cube labeling.
	Topology = topology.Topology
	// TimerOptions configures the TIMER enhancer (NH, seed).
	TimerOptions = core.Options
	// TimerResult reports a TIMER run (Coco before/after, mapping).
	TimerResult = core.Result
	// TimerScratch is the reusable hot-path arena of the TIMER enhancer;
	// callers running many enhancements back to back pass one via
	// TimerOptions.Scratch to make the warm path allocation-free.
	TimerScratch = core.Scratch
	// PartitionResult reports a k-way partition with quality metrics.
	PartitionResult = partition.Result
	// PartitionScratch is the reusable arena of the multilevel
	// partitioner; callers partitioning many graphs back to back pass
	// one via PartitionConfig.Scratch (see partition.Config) to make
	// the warm path allocation-free.
	PartitionScratch = partition.Scratch
	// PartitionConfig is the full multilevel-partitioner configuration
	// (K, epsilon, seed, coarsening scheme, V-cycles, scratch).
	PartitionConfig = partition.Config
	// MappingScratch is the base-stage mapper arena: communication-graph
	// contraction, greedy per-PE state and DRB recursion storage, with a
	// PartitionScratch inside for DRB's bisections.
	MappingScratch = mapping.Scratch
	// DRBConfig configures the SCOTCH-style dual-recursive-bisection
	// mapper.
	DRBConfig = mapping.DRBConfig

	// Engine is the concurrent mapping engine: topology cache + job
	// pipeline + batch runner.
	Engine = engine.Engine
	// EngineOptions sizes the engine's worker pool and job queue.
	EngineOptions = engine.Options
	// JobSpec describes one mapping job (graph + topology spec + case +
	// TIMER options).
	JobSpec = engine.JobSpec
	// GraphSpec names a job's application graph (netgen name, inline
	// edges, or a pre-built Graph).
	GraphSpec = engine.GraphSpec
	// Job is a snapshot of a submitted job (status, stage timings,
	// result).
	Job = engine.Job
	// JobResult is a finished job's outcome (Coco/cut before and after,
	// stage times).
	JobResult = engine.JobResult
	// BatchSpec fans graphs out over topologies through the engine. Its
	// SharedPartition mode derives partition seeds from (base seed, rep)
	// only, so cases c2–c4 of one repetition compare on a single shared
	// partition (the paper's experimental shape).
	BatchSpec = engine.BatchSpec
	// Case selects the initial-mapping baseline c1–c4.
	Case = engine.Case
	// ArtifactCache is the engine's content-addressed memo of
	// materialized graphs and partitions (single-flight, LRU-bounded);
	// EngineOptions.ArtifactCacheEntries/ArtifactCacheBytes size it.
	ArtifactCache = engine.ArtifactCache
	// ArtifactCacheStats reports the artifact cache's hit/miss/in-flight
	// counters (Engine.Stats().Artifacts, mapd GET /v1/stats).
	ArtifactCacheStats = engine.ArtifactStats
	// GraphFingerprint is a 128-bit content hash of a graph's CSR form —
	// the artifact cache's key for caller-supplied graphs (see
	// Graph.Fingerprint).
	GraphFingerprint = graph.Fingerprint

	// IngestOptions configures the real-world dataset loader (format,
	// duplicate-edge weights, largest-component extraction, parallelism,
	// anti-OOM size caps).
	IngestOptions = ingest.Options
	// IngestResult is a loaded, normalized graph with its id remap
	// table, content fingerprint and load statistics.
	IngestResult = ingest.Result
	// IngestStats describes what one dataset load saw and did (entries,
	// self-loops, parallel edges, wall time, peak-footprint estimate).
	IngestStats = ingest.Stats
	// GraphInfo is the engine's registration record of an ingested
	// dataset (ref, fingerprint, sizes, ingest stats) — what mapd's
	// /v1/graphs endpoints serve.
	GraphInfo = engine.GraphInfo

	// BenchSpec is a declarative benchmark matrix: networks ×
	// topologies × mapper cases × repetitions.
	BenchSpec = bench.Spec
	// BenchRunOptions tunes a benchmark run (workers, rep/seed
	// overrides, progress callback).
	BenchRunOptions = bench.RunOptions
	// BenchResults is the machine-readable outcome of a benchmark run
	// (the BENCH_results.json schema).
	BenchResults = bench.Results
	// BenchDiff is the outcome of gating a run against a baseline.
	BenchDiff = bench.Diff
)

// The four initial-mapping baselines of the paper's evaluation
// (Section 7.1), selectable in a JobSpec. The zero value defaults to
// CaseIdentity.
const (
	// CaseSCOTCH (c1): dual-recursive-bisection mapping (SCOTCH stand-in).
	CaseSCOTCH = engine.C1SCOTCH
	// CaseIdentity (c2): IDENTITY on a multilevel partition.
	CaseIdentity = engine.C2Identity
	// CaseGreedyAllC (c3): GREEDYALLC on the communication graph.
	CaseGreedyAllC = engine.C3GreedyAllC
	// CaseGreedyMin (c4): GREEDYMIN (LibTopoMap-style construction).
	CaseGreedyMin = engine.C4GreedyMin
)

// ParseCase accepts the paper's baseline names (case-insensitive) and
// the short forms c1..c4; the empty string is CaseIdentity.
func ParseCase(s string) (Case, error) { return engine.ParseCase(s) }

// NewBuilder creates a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewTimerScratch creates a reusable TIMER scratch arena (see
// TimerOptions.Scratch).
func NewTimerScratch() *TimerScratch { return core.NewScratch() }

// NewPartitionScratch creates a reusable partitioner arena (see
// PartitionConfig.Scratch).
func NewPartitionScratch() *PartitionScratch { return partition.NewScratch() }

// NewMappingScratch creates a reusable base-stage mapper arena; its
// methods (CommGraph, GreedyAllC, GreedyMin, DRB) mirror the package
// functions with scratch-backed, aliasing results.
func NewMappingScratch() *MappingScratch { return mapping.NewScratch() }

// PartitionWithConfig computes a partition with full control over the
// multilevel configuration, including a reusable scratch.
func PartitionWithConfig(g *Graph, cfg PartitionConfig) (*PartitionResult, error) {
	return partition.Partition(g, cfg)
}

// NewEngine creates a concurrent mapping engine and starts its worker
// pool. Close it when done. Submit/Wait/RunBatch run whole
// partition→map→enhance pipelines; the engine's topology cache builds
// each partial-cube labeling once and shares it across jobs.
func NewEngine(opt EngineOptions) *Engine { return engine.New(opt) }

// SmokeBenchMatrix returns the canonical CI-sized benchmark matrix:
// small generated networks over two 64-PE topologies with every mapper
// family, finishing in well under a minute. Its quality metrics are the
// repository's regression gate (BENCH_baseline.json).
func SmokeBenchMatrix() BenchSpec { return bench.Smoke() }

// SharedSmokeBenchMatrix returns the smoke matrix in shared-partition
// mode: each repetition's cases compare on one shared partition served
// from the engine's artifact cache (paper-faithful; quality differs
// from the default smoke baseline).
func SharedSmokeBenchMatrix() BenchSpec { return bench.SmokeShared() }

// BatchSeed derives the per-rep, per-case job seed of a batch —
// the seed algebra shared by the engine's batches and the bench
// harness. SharedPartitionSeed is its case-independent counterpart
// used by SharedPartition batches for the partition stage.
func BatchSeed(base int64, rep int, c Case) int64 { return engine.BatchSeed(base, rep, c) }

// SharedPartitionSeed derives the case-independent partition seed of
// repetition rep in a SharedPartition batch.
func SharedPartitionSeed(base int64, rep int) int64 { return engine.SharedPartitionSeed(base, rep) }

// PaperBenchMatrix returns the full paper-style matrix: the Table 1
// suite over the five Section 7 topologies, cases c1–c4, five
// repetitions — the shape of the paper's tables as one run.
func PaperBenchMatrix() BenchSpec { return bench.Paper() }

// RunBench executes a benchmark matrix on the concurrent mapping
// engine and returns quality (Coco, cut, dilation, imbalance) and
// performance (per-stage times, jobs/sec) summaries per scenario.
// Quality metrics are deterministic for a fixed matrix and seed.
func RunBench(spec BenchSpec, opt BenchRunOptions) (*BenchResults, error) {
	return bench.Run(spec, opt)
}

// CompareBench gates a benchmark run against a baseline: any quality
// metric worse than baseline·(1+tol), or any baseline scenario missing
// from the run, makes the diff not OK.
func CompareBench(baseline, current *BenchResults, tol float64) *BenchDiff {
	return bench.Compare(baseline, current, tol)
}

// ParseTopologySpec validates a canonical topology spec string
// ("grid:16x16", "torus:8x8x8", "hypercube:8" or a paper name) and
// returns its canonical form — the engine's cache key.
func ParseTopologySpec(spec string) (string, error) { return topology.Canonicalize(spec) }

// ReadGraph loads a METIS/Chaco format graph file. It rejects malformed
// inputs (including self-loops, which the format cannot express); for
// permissive, normalizing loads of real-world datasets — and for SNAP
// edge lists or Matrix Market files — use LoadGraphFile.
func ReadGraph(path string) (*Graph, error) { return graph.ReadMETISFile(path) }

// WriteGraphSnapshot writes g to path in the binary CSR snapshot format
// (the checksummed, mmap-loadable container the engine's disk cache and
// mapingest's -o foo.csrbin speak). The write is atomic: a temp file in
// the destination directory is renamed into place. note is an arbitrary
// caller string stored verbatim and returned by OpenGraphSnapshot —
// conventionally a provenance label such as the source path.
func WriteGraphSnapshot(g *Graph, path, note string) error { return g.WriteSnapshot(path, note) }

// OpenGraphSnapshot loads a snapshot written by WriteGraphSnapshot,
// returning the graph and the writer's note. The file is verified end
// to end (container checksum, section shapes, recomputed CSR
// fingerprint) before anything is returned; truncated, corrupt or
// stale-version files are an error, never a silently wrong graph. On
// unix the CSR arrays alias a read-only file mapping, so opening a
// large snapshot costs a checksum pass plus page-ins, not a parse.
func OpenGraphSnapshot(path string) (*Graph, string, error) { return graph.OpenSnapshot(path) }

// LoadGraphFile ingests a real-world graph file (SNAP/edge-list,
// Matrix Market or METIS, auto-detected by default) through the
// two-pass streaming CSR loader: self-loops dropped, parallel edges
// merged, ids remapped to a compact range, peak memory within a small
// constant of the final CSR. The result carries the graph, the id
// remap table, the content fingerprint and the load stats.
//
// Engines ingest datasets directly — Engine.IngestPath /
// Engine.IngestBytes register a graph once and jobs reference it by
// its ref ("file:<path>" / "upload:<fingerprint>") in
// GraphSpec.Ref — which is also what mapd's POST /v1/graphs does.
func LoadGraphFile(path string, opt IngestOptions) (*IngestResult, error) {
	return ingest.LoadFile(path, opt)
}

// LoadGraphBytes is LoadGraphFile over an in-memory file image (name
// only drives format auto-detection).
func LoadGraphBytes(name string, data []byte, opt IngestOptions) (*IngestResult, error) {
	return ingest.LoadBytes(name, data, opt)
}

// GenerateNetwork builds a synthetic stand-in for one of the paper's
// Table 1 complex networks ("p2p-Gnutella", "as-skitter", ...) at the
// given scale in (0, 1].
func GenerateNetwork(name string, scale float64, seed int64) (*Graph, error) {
	spec, err := netgen.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale, seed), nil
}

// NetworkNames lists the names of the Table 1 suite.
func NetworkNames() []string {
	var names []string
	for _, s := range netgen.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// Grid builds an n-dimensional mesh topology (a partial cube).
func Grid(extents ...int) (*Topology, error) { return topology.Grid(extents...) }

// Torus builds an even torus topology (a partial cube).
func Torus(extents ...int) (*Topology, error) { return topology.Torus(extents...) }

// Hypercube builds the d-dimensional hypercube topology.
func Hypercube(d int) (*Topology, error) { return topology.Hypercube(d) }

// TopologyFromGraph recognizes an arbitrary graph as a partial cube and
// labels it (paper Section 3), or fails if it is not a partial cube.
func TopologyFromGraph(name string, g *Graph) (*Topology, error) {
	return topology.FromGraph(name, g)
}

// TreeTopology builds a tree-shaped topology from a parent vector
// (parent[v] < v for v > 0; parent[0] ignored). Every tree is a partial
// cube with one label digit per edge, so trees are limited to 65
// vertices by the 64-digit labels.
func TreeTopology(name string, parent []int) (*Topology, error) {
	return topology.Tree(name, parent)
}

// PaperTopology builds one of the paper's five processor graphs by name:
// "grid16x16", "grid8x8x8", "torus16x16", "torus8x8x8", "8-dimHQ".
func PaperTopology(name string) (*Topology, error) {
	for _, pt := range topology.PaperTopologies() {
		if pt.String() == name {
			return pt.Build()
		}
	}
	return nil, fmt.Errorf("repro: unknown paper topology %q (want one of grid16x16, grid8x8x8, torus16x16, torus8x8x8, 8-dimHQ)", name)
}

// Partition computes an ε-balanced k-way partition of g with the
// multilevel partitioner (the repository's KaHIP stand-in).
func Partition(g *Graph, k int, eps float64, seed int64) (*PartitionResult, error) {
	return partition.Partition(g, partition.Config{K: k, Epsilon: eps, Seed: seed})
}

// MapIdentity turns a partition into a mapping by placing block i on PE
// i (the paper's IDENTITY baseline, case c2).
func MapIdentity(part []int32) []int32 { return mapping.FromPartition(part) }

// MapGreedyAllC maps a partition onto topo with the GREEDYALLC baseline
// (case c3): communication graph construction plus greedy all-to-mapped
// placement.
func MapGreedyAllC(ga *Graph, part []int32, topo *Topology) ([]int32, error) {
	gc := mapping.CommGraph(ga, part, topo.P())
	nu, err := mapping.GreedyAllC(gc, topo)
	if err != nil {
		return nil, err
	}
	return mapping.Compose(part, nu), nil
}

// MapGreedyMin maps a partition onto topo with the GREEDYMIN baseline
// (case c4, the LibTopoMap-style construction).
func MapGreedyMin(ga *Graph, part []int32, topo *Topology) ([]int32, error) {
	gc := mapping.CommGraph(ga, part, topo.P())
	nu, err := mapping.GreedyMin(gc, topo)
	if err != nil {
		return nil, err
	}
	return mapping.Compose(part, nu), nil
}

// MapDRB maps ga onto topo by dual recursive bipartitioning (the
// SCOTCH-style baseline of case c1).
func MapDRB(ga *Graph, topo *Topology, cfg DRBConfig) ([]int32, error) {
	return mapping.DRB(ga, topo, cfg)
}

// Enhance runs TIMER (paper Algorithm 1) on an initial mapping and
// returns the enhanced mapping together with before/after metrics. The
// input mapping's balance is preserved exactly.
func Enhance(ga *Graph, topo *Topology, assign []int32, opt TimerOptions) (*TimerResult, error) {
	return core.Enhance(ga, topo, assign, opt)
}

// Coco evaluates the paper's hop-byte objective Eq. (3) for a mapping.
func Coco(ga *Graph, assign []int32, topo *Topology) int64 {
	return mapping.Coco(ga, assign, topo)
}

// Cut evaluates the edge-cut of a mapping (weight of edges whose
// endpoints live on different PEs).
func Cut(ga *Graph, assign []int32) int64 { return mapping.Cut(ga, assign) }

// ValidateMapping checks range and (for eps ≥ 0) the balance constraint
// of paper Eq. (1).
func ValidateMapping(ga *Graph, assign []int32, topo *Topology, eps float64) error {
	return mapping.Validate(ga, assign, topo, eps)
}

// MappingReport is the full quality report of a mapping (Coco, cut,
// dilation, per-convex-cut traffic).
type MappingReport = mapping.Report

// EvaluateMapping computes a MappingReport.
func EvaluateMapping(ga *Graph, assign []int32, topo *Topology) MappingReport {
	return mapping.Evaluate(ga, assign, topo)
}

// RoutingResult reports a shortest-path routing simulation (total
// hop-bytes — always equal to Coco — plus link congestion statistics).
type RoutingResult = routing.Result

// SimulateRouting routes every application edge's traffic along a
// canonical shortest path in the topology and returns link loads. It
// makes the paper's "routing on shortest paths" abstraction executable
// and exposes congestion, which Coco ignores.
func SimulateRouting(ga *Graph, assign []int32, topo *Topology) (*RoutingResult, error) {
	return routing.Simulate(ga, assign, topo)
}
