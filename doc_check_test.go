package repro

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestExportedDocCoverage fails when an exported identifier in the
// public facade (repro.go) or the engine (internal/engine) lacks a doc
// comment. These two surfaces are the repository's API: repro.go is
// what library users import, internal/engine is what cmd/mapd and
// cmd/mapbench are built on. CI runs this in the lint job, so an
// undocumented export is a build break, not a review nit.
func TestExportedDocCoverage(t *testing.T) {
	var missing []string
	missing = append(missing, undocumentedExports(t, "repro.go")...)
	files, err := filepath.Glob(filepath.Join("internal", "engine", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		missing = append(missing, undocumentedExports(t, f)...)
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("undocumented exported symbol: %s", m)
	}
}

// undocumentedExports parses one file and returns a "file: Symbol" line
// for every exported declaration without a doc comment. Exported
// fields of exported structs and exported methods count too; grouped
// var/const specs are covered by a doc comment on either the group or
// the spec.
func undocumentedExports(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var missing []string
	report := func(name string) {
		missing = append(missing, fmt.Sprintf("%s: %s", path, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = recvName(d.Recv.List[0].Type) + "." + name
			}
			report(name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Name.Name)
					}
					if st, ok := s.Type.(*ast.StructType); ok {
						missing = append(missing, undocumentedFields(fset, path, s.Name.Name, st)...)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// undocumentedFields reports exported struct fields that carry neither
// their own doc or line comment nor continue a documented run: fields
// on consecutive lines form one run, and a doc comment on the run's
// first field covers the whole run (the declaration style this
// repository uses for related fields, e.g. a min/mean/max or cap/len
// cluster). A blank line starts a new run that needs its own comment.
func undocumentedFields(fset *token.FileSet, path, typeName string, st *ast.StructType) []string {
	var missing []string
	covered := false
	prevEnd := -2
	for _, field := range st.Fields.List {
		start := fset.Position(field.Pos()).Line
		if field.Doc != nil {
			start = fset.Position(field.Doc.Pos()).Line
		}
		if field.Doc != nil || field.Comment != nil {
			covered = true
		} else if start > prevEnd+1 {
			covered = false // blank line: a new, so-far-undocumented run
		}
		prevEnd = fset.Position(field.End()).Line
		if covered {
			continue
		}
		for _, n := range field.Names {
			if n.IsExported() {
				missing = append(missing, fmt.Sprintf("%s: %s.%s", path, typeName, n.Name))
			}
		}
	}
	return missing
}

// recvName renders a method receiver type for error messages.
func recvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvName(t.X)
	}
	return "?"
}
