// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7). Each benchmark runs the corresponding
// experiment at a reduced scale (the suite shrunk to CI size, fewer
// repetitions, smaller NH) and reports the headline quantities as custom
// benchmark metrics, so `go test -bench=.` doubles as a smoke
// reproduction. cmd/experiments regenerates the full tables with
// paper-sized parameters.
//
// Metric naming: qCo_* is the geometric-mean Coco quotient after/before
// TIMER (< 1 means TIMER improved the mapping), qCut_* the edge-cut
// quotient, qT_* the time quotient vs the baseline.
package repro

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/netgen"
	"repro/internal/partition"
	"repro/internal/topology"
)

// benchCfg is the reduced-scale configuration used by the table/figure
// benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Reps: 1, NH: 5, Epsilon: 0.03, Seed: 1}
}

const (
	benchScale = 0.004
	benchMaxV  = 3000
	benchMaxE  = 70000
)

// BenchmarkTable1NetworkSuite regenerates Table 1: the 15-network suite.
func BenchmarkTable1NetworkSuite(b *testing.B) {
	b.ReportAllocs()
	var totalV, totalE int
	for i := 0; i < b.N; i++ {
		suite := netgen.GenerateSuite(netgen.SuiteOption{Scale: benchScale, Seed: int64(i)})
		if len(suite) != 15 {
			b.Fatalf("suite has %d networks, want 15", len(suite))
		}
		totalV, totalE = 0, 0
		for _, inst := range suite {
			totalV += inst.G.N()
			totalE += inst.G.M()
		}
	}
	b.ReportMetric(float64(totalV), "vertices")
	b.ReportMetric(float64(totalE), "edges")
}

// benchCase runs one experimental case over the reduced suite and
// reports the per-topology Coco quotients (the content of one Figure 5
// subplot) plus the aggregate time quotient (one column group of
// Table 2).
func benchCase(b *testing.B, c experiments.Case) {
	b.Helper()
	var results []*experiments.SuiteResult
	for i := 0; i < b.N; i++ {
		suite, err := experiments.NewSuite(benchScale, benchMaxV, benchMaxE, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		results, err = suite.RunCase(c, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range results {
		b.ReportMetric(sr.QCo.Mean, "qCo_"+sr.Topo)
	}
	var qtSum float64
	for _, sr := range results {
		qtSum += sr.QT.Mean
	}
	b.ReportMetric(qtSum/float64(len(results)), "qT_mean")
}

// BenchmarkFigure5a_SCOTCH regenerates Figure 5a (case c1: TIMER on DRB
// initial mappings) and the c1 columns of Table 2.
func BenchmarkFigure5a_SCOTCH(b *testing.B) { benchCase(b, experiments.C1SCOTCH) }

// BenchmarkFigure5b_Identity regenerates Figure 5b (case c2).
func BenchmarkFigure5b_Identity(b *testing.B) { benchCase(b, experiments.C2Identity) }

// BenchmarkFigure5c_GreedyAllC regenerates Figure 5c (case c3).
func BenchmarkFigure5c_GreedyAllC(b *testing.B) { benchCase(b, experiments.C3GreedyAllC) }

// BenchmarkFigure5d_GreedyMin regenerates Figure 5d (case c4).
func BenchmarkFigure5d_GreedyMin(b *testing.B) { benchCase(b, experiments.C4GreedyMin) }

// BenchmarkTable2RuntimeQuotients regenerates Table 2 across all four
// cases (this is the full evaluation; the figure benchmarks above cover
// its per-case columns individually).
func BenchmarkTable2RuntimeQuotients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := experiments.NewSuite(benchScale, benchMaxV, benchMaxE, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range experiments.Cases() {
			if _, err := suite.RunCase(c, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3PartitionTimes regenerates Table 3: partitioner
// running times for |Vp| = 256 and 512 over the suite.
func BenchmarkTable3PartitionTimes(b *testing.B) {
	suite, err := experiments.NewSuite(0.02, 20000, 200000, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []experiments.PartitionTiming
	for i := 0; i < b.N; i++ {
		rows, err = suite.PartitionTimes(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum256, sum512 float64
	for _, r := range rows {
		sum256 += r.Seconds[0]
		sum512 += r.Seconds[1]
	}
	b.ReportMetric(sum256, "s_k256_total")
	b.ReportMetric(sum512, "s_k512_total")
}

// BenchmarkTimerEnhance measures TIMER alone (one hierarchy batch per
// topology) on a fixed network — the core algorithm's throughput,
// O(NH·|Ea|·dimGa).
func BenchmarkTimerEnhance(b *testing.B) {
	ga := netgen.Generate(netgen.RMAT, 4000, 16000, 7)
	for _, pt := range topology.PaperTopologies() {
		topo := pt.MustBuild()
		part, err := partition.Partition(ga, partition.Config{K: topo.P(), Epsilon: 0.03, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		assign := MapIdentity(part.Part)
		b.Run(topo.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Enhance(ga, topo, assign, TimerOptions{NumHierarchies: 5, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineTopologyCache measures one mapping job through the
// engine with a cold topology cache (fresh engine per iteration, the
// labeling is rebuilt every time) versus a warm one (shared engine, the
// labeling is built once) — the latency win the engine's shared cache
// buys every request after the first.
func BenchmarkEngineTopologyCache(b *testing.B) {
	spec := engine.JobSpec{
		Graph:          engine.GraphSpec{Network: "p2p-Gnutella", Scale: 0.05, Seed: 11},
		Topology:       "torus:16x16",
		Case:           engine.C2Identity,
		Seed:           42,
		NumHierarchies: 3,
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{Workers: 1})
			if _, err := eng.Run(spec); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: 1})
		defer eng.Close()
		if _, err := eng.Topology(spec.Topology); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(spec); err != nil {
				b.Fatal(err)
			}
		}
		hits, misses := eng.Cache().Stats()
		b.ReportMetric(float64(hits)/float64(b.N), "cache_hits/op")
		b.ReportMetric(float64(misses)/float64(b.N), "cache_misses/op")
	})
}

// BenchmarkPartitioner measures the KaHIP-substitute partitioner at the
// paper's block counts (the denominator of Table 2's quotients).
func BenchmarkPartitioner(b *testing.B) {
	ga := netgen.Generate(netgen.RMAT, 6000, 24000, 9)
	for _, k := range []int{256, 512} {
		b.Run(map[int]string{256: "k256", 512: "k512"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Partition(ga, partition.Config{K: k, Epsilon: 0.03, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
