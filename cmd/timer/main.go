// Command timer maps a graph onto a partial-cube topology with one of
// the paper's baseline algorithms and enhances the mapping with TIMER,
// reporting Coco and edge cut before and after.
//
// Usage:
//
//	timer -graph app.metis -topo grid16x16 -algo identity -nh 50
//	timer -network p2p-Gnutella -scale 0.25 -topo torus16x16 -algo allc
//	timer -network as-22july06 -topo 8-dimHQ -algo drb -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "application graph in METIS format")
		network   = flag.String("network", "", "generate a Table 1 network instead of reading a file")
		scale     = flag.Float64("scale", 0.1, "network scale when -network is used")
		topoName  = flag.String("topo", "grid16x16", "processor topology: grid16x16, grid8x8x8, torus16x16, torus8x8x8, 8-dimHQ")
		algo      = flag.String("algo", "identity", "initial mapping: identity, allc, min, drb")
		nh        = flag.Int("nh", 50, "TIMER hierarchies")
		eps       = flag.Float64("eps", 0.03, "partitioning imbalance")
		seed      = flag.Int64("seed", 1, "random seed")
		report    = flag.Bool("report", false, "print dilation and link-congestion reports (routing simulation)")
	)
	flag.Parse()

	ga, err := loadGraph(*graphPath, *network, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	topo, err := repro.PaperTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	if ga.N() < topo.P() {
		fatal(fmt.Errorf("graph has %d vertices but topology has %d PEs", ga.N(), topo.P()))
	}
	fmt.Printf("application graph: n=%d m=%d\n", ga.N(), ga.M())
	fmt.Printf("topology: %s (%d PEs, %d convex cuts)\n", topo.Name, topo.P(), topo.Dim)

	t0 := time.Now()
	assign, err := initialMapping(ga, topo, *algo, *eps, *seed)
	if err != nil {
		fatal(err)
	}
	mapTime := time.Since(t0)

	cocoBefore := repro.Coco(ga, assign, topo)
	cutBefore := repro.Cut(ga, assign)
	fmt.Printf("initial mapping (%s): Coco=%d Cut=%d  [%.3fs]\n", *algo, cocoBefore, cutBefore, mapTime.Seconds())

	t1 := time.Now()
	res, err := repro.Enhance(ga, topo, assign, repro.TimerOptions{NumHierarchies: *nh, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	timerTime := time.Since(t1)

	cutAfter := repro.Cut(ga, res.Assign)
	fmt.Printf("after TIMER (NH=%d): Coco=%d Cut=%d  [%.3fs]\n", *nh, res.CocoAfter, cutAfter, timerTime.Seconds())
	fmt.Printf("Coco improvement: %.2f%%  (quotient %.4f)\n",
		100*(1-float64(res.CocoAfter)/float64(cocoBefore)),
		float64(res.CocoAfter)/float64(cocoBefore))
	fmt.Printf("hierarchies kept: %d/%d, label swaps: %d\n", res.HierarchiesKept, *nh, res.SwapsApplied)
	if err := repro.ValidateMapping(ga, res.Assign, topo, -1); err != nil {
		fatal(err)
	}
	if *report {
		fmt.Printf("before: %s\n", repro.EvaluateMapping(ga, assign, topo))
		fmt.Printf("after:  %s\n", repro.EvaluateMapping(ga, res.Assign, topo))
		simBefore, err := repro.SimulateRouting(ga, assign, topo)
		if err != nil {
			fatal(err)
		}
		simAfter, err := repro.SimulateRouting(ga, res.Assign, topo)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("routing before: %s\n", simBefore)
		fmt.Printf("routing after:  %s\n", simAfter)
	}
}

func loadGraph(path, network string, scale float64, seed int64) (*repro.Graph, error) {
	switch {
	case path != "" && network != "":
		return nil, fmt.Errorf("use either -graph or -network, not both")
	case path != "":
		return repro.ReadGraph(path)
	case network != "":
		return repro.GenerateNetwork(network, scale, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -network is required (networks: %v)", repro.NetworkNames())
	}
}

func initialMapping(ga *repro.Graph, topo *repro.Topology, algo string, eps float64, seed int64) ([]int32, error) {
	if algo == "drb" {
		return repro.MapDRB(ga, topo, repro.DRBConfig{Epsilon: eps, Seed: seed, Fast: true})
	}
	part, err := repro.Partition(ga, topo.P(), eps, seed)
	if err != nil {
		return nil, err
	}
	switch algo {
	case "identity":
		return repro.MapIdentity(part.Part), nil
	case "allc":
		return repro.MapGreedyAllC(ga, part.Part, topo)
	case "min":
		return repro.MapGreedyMin(ga, part.Part, topo)
	default:
		return nil, fmt.Errorf("unknown -algo %q (want identity, allc, min or drb)", algo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timer:", err)
	os.Exit(1)
}
