// Command maprouter fronts a fleet of mapd replicas with one mapd-
// compatible endpoint: jobs are routed by rendezvous hashing on their
// canonical spec hash (so a spec keeps hitting the replica whose
// artifact cache and job ledger are warm), replicas are health-probed
// and circuit-broken, and a job whose replica dies mid-flight is
// resubmitted to the next replica in rendezvous order — invisible to
// the waiting client, byte-identical in its result.
//
// Usage:
//
//	maprouter -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	maprouter -addr :8080 -replicas ... -probe-interval 250ms \
//	          -breaker-threshold 3 -breaker-cooldown 2s
//
// Example session (same protocol as mapd):
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": {"network": "p2p-Gnutella", "scale": 0.05},
//	  "topology": "grid:8x8", "num_hierarchies": 10, "seed": 42}'
//	curl -s localhost:8080/v1/jobs/fl-000001?wait=1
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		replicas  = flag.String("replicas", "", "comma-separated mapd base URLs (required)")
		probeIvl  = flag.Duration("probe-interval", 500*time.Millisecond, "readiness probe period per replica")
		probeTo   = flag.Duration("probe-timeout", 2*time.Second, "deadline of one readiness probe")
		brkThresh = flag.Int("breaker-threshold", 3, "consecutive failures that open a replica's circuit breaker")
		brkCool   = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a half-open trial")
		upTimeout = flag.Duration("upstream-timeout", 60*time.Second, "deadline of one upstream request attempt")
		retain    = flag.Int("retain-jobs", 0, "routed-job records kept before the oldest are forgotten (0 = default 4096)")
	)
	flag.Parse()
	if *replicas == "" {
		log.Fatal("maprouter: -replicas is required (comma-separated mapd base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}

	rt, err := fleet.NewRouter(fleet.Config{
		Replicas:         urls,
		ProbeInterval:    *probeIvl,
		ProbeTimeout:     *probeTo,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		UpstreamTimeout:  *upTimeout,
		RetainJobs:       *retain,
	})
	if err != nil {
		log.Fatal(fmt.Errorf("maprouter: %w", err))
	}
	defer rt.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("maprouter: listening on %s, routing over %d replicas", *addr, len(urls))
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(fmt.Errorf("maprouter: %w", err))
		}
	case sig := <-sigCh:
		log.Printf("maprouter: %s: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("maprouter: http shutdown: %v", err)
		}
		cancel()
	}
}
