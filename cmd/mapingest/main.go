// Command mapingest validates, fingerprints and converts real-world
// graph files (SNAP/edge-list, Matrix Market, METIS — auto-detected)
// through the streaming CSR ingestion layer. It is the offline
// counterpart of mapd's POST /v1/graphs: the same loader, the same
// normalization (self-loop drop, parallel-edge merge), the same
// content fingerprint.
//
// Inspect a dataset (stats + fingerprint; nonzero exit on a parse
// error, so it doubles as a validator):
//
//	mapingest ca-GrQc.txt
//	mapingest -json web-Google.mtx          # machine-readable
//	mapingest -lcc -weights sum roads.mtx   # largest component, summed
//
// Convert to the METIS format the rest of the toolchain reads
// natively, or — with a .csrbin suffix — to the binary CSR snapshot
// format the engine's disk cache speaks (checksummed, mmap-loadable;
// the note field records the source path; single input only):
//
//	mapingest -o ca-GrQc.graph ca-GrQc.txt
//	mapingest -o ca-GrQc.csrbin ca-GrQc.txt
//	mapingest -o lcc.graph -lcc -remap lcc.ids ca-GrQc.txt
//
// The -remap file records one original vertex id per line (line i =
// CSR vertex i), so converted results can be translated back to the
// input's id space.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ingest"
)

func main() {
	var (
		format   = flag.String("format", "auto", "input format: auto, snap, matrixmarket or metis")
		weights  = flag.String("weights", "auto", "duplicate-edge weights: auto, sum or unit")
		lcc      = flag.Bool("lcc", false, "keep only the largest connected component")
		workers  = flag.Int("workers", 0, "parallel fill shards (default GOMAXPROCS, capped at 8)")
		jsonOut  = flag.Bool("json", false, "print machine-readable JSON instead of text")
		outFile  = flag.String("o", "", "convert the (single) input to this file: METIS text, or the binary CSR snapshot format if the name ends in .csrbin")
		remapOut = flag.String("remap", "", "write the CSR→original vertex id table to this file")
	)
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mapingest [flags] FILE...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if (*outFile != "" || *remapOut != "") && flag.NArg() != 1 {
		fatal(fmt.Errorf("-o and -remap take exactly one input file, got %d", flag.NArg()))
	}

	opt, err := buildOptions(*format, *weights, *lcc, *workers)
	if err != nil {
		fatal(err)
	}

	failed := 0
	for _, path := range flag.Args() {
		res, err := ingest.LoadFile(path, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapingest: %s: %v\n", path, err)
			failed++
			continue
		}
		if err := report(path, res, *jsonOut); err != nil {
			fatal(err)
		}
		if *outFile != "" {
			if strings.HasSuffix(*outFile, ".csrbin") {
				err = res.Graph.WriteSnapshot(*outFile, path)
			} else {
				err = res.Graph.WriteMETISFile(*outFile)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *outFile)
		}
		if *remapOut != "" {
			if err := writeRemap(*remapOut, res.Remap); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *remapOut)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func buildOptions(format, weights string, lcc bool, workers int) (ingest.Options, error) {
	f, err := ingest.ParseFormat(format)
	if err != nil {
		return ingest.Options{}, err
	}
	var wm ingest.WeightMode
	switch weights {
	case "", "auto":
		wm = ingest.WeightAuto
	case "sum":
		wm = ingest.WeightSum
	case "unit":
		wm = ingest.WeightUnit
	default:
		return ingest.Options{}, fmt.Errorf("unknown weights mode %q (want auto, sum or unit)", weights)
	}
	return ingest.Options{Format: f, Weights: wm, LargestComponent: lcc, Workers: workers}, nil
}

// fileReport is the -json schema: the load stats plus the graph's
// identity, matching the fields mapd returns from POST /v1/graphs.
type fileReport struct {
	Path           string       `json:"path"`
	Fingerprint    string       `json:"fingerprint"`
	N              int          `json:"n"`
	M              int          `json:"m"`
	FootprintBytes int64        `json:"footprint_bytes"`
	Connected      bool         `json:"connected"`
	Stats          ingest.Stats `json:"stats"`
}

func report(path string, res *ingest.Result, asJSON bool) error {
	g := res.Graph
	r := fileReport{
		Path:           path,
		Fingerprint:    res.Fingerprint.String(),
		N:              g.N(),
		M:              g.M(),
		FootprintBytes: g.FootprintBytes(),
		Connected:      g.IsConnected(),
		Stats:          res.Stats,
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	fmt.Printf("%s: %s, n=%d m=%d (%d entries, %d self-loops dropped, %d parallel edges merged)\n",
		path, r.Stats.Format, r.N, r.M, r.Stats.Entries, r.Stats.SelfLoops, r.Stats.MultiEdges)
	if r.Stats.ComponentsDropped > 0 {
		fmt.Printf("  largest component kept: %d components / %d vertices dropped\n",
			r.Stats.ComponentsDropped, r.Stats.VerticesDropped)
	}
	fmt.Printf("  connected=%v  csr=%d bytes  peak≈%d bytes  load=%.3fs\n",
		r.Connected, r.FootprintBytes, r.Stats.PeakBytes, r.Stats.LoadSeconds)
	fmt.Printf("  fingerprint %s\n", r.Fingerprint)
	return nil
}

func writeRemap(path string, remap []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, id := range remap {
		if _, err := fmt.Fprintln(f, id); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapingest:", err)
	os.Exit(1)
}
