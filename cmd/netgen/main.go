// Command netgen generates the synthetic complex-network suite standing
// in for the paper's Table 1 instances and writes them as METIS files.
//
// Usage:
//
//	netgen -list                               # print the catalog
//	netgen -name p2p-Gnutella -scale 0.5 -out g.metis
//	netgen -all -scale 0.05 -dir ./networks    # whole suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/netgen"
)

func main() {
	var (
		list  = flag.Bool("list", false, "print the Table 1 catalog and exit")
		name  = flag.String("name", "", "generate a single network by name")
		all   = flag.Bool("all", false, "generate the whole suite")
		scale = flag.Float64("scale", 0.1, "scale in (0,1]; 1 = paper sizes")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file for -name (default stdout)")
		dir   = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	switch {
	case *list:
		suite := netgen.GenerateSuite(netgen.SuiteOption{Scale: *scale, Seed: *seed})
		if err := experiments.WriteTable1(os.Stdout, suite); err != nil {
			fatal(err)
		}
	case *name != "":
		spec, err := netgen.ByName(*name)
		if err != nil {
			fatal(err)
		}
		g := spec.Generate(*scale, *seed)
		fmt.Fprintf(os.Stderr, "%s at scale %g: n=%d m=%d\n", spec.Name, *scale, g.N(), g.M())
		if *out == "" {
			if err := g.WriteMETIS(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := g.WriteMETISFile(*out); err != nil {
			fatal(err)
		}
	case *all:
		for _, spec := range netgen.Catalog() {
			g := spec.Generate(*scale, *seed)
			path := filepath.Join(*dir, spec.Name+".metis")
			if err := g.WriteMETISFile(path); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (n=%d m=%d)\n", path, g.N(), g.M())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
