// Command mapd serves the concurrent mapping engine over HTTP: submit
// partition→map→enhance jobs, poll their status and stage timings, and
// inspect the shared topology cache.
//
// Usage:
//
//	mapd                                     # listen on :8080
//	mapd -addr :9000 -workers 8 -queue 256
//	mapd -prewarm grid:16x16,hypercube:8     # build labelings at boot
//	mapd -cache-dir /var/cache/mapd          # persistent artifact tier:
//	                                         # restarts warm-start from
//	                                         # the previous process's
//	                                         # graphs and partitions
//	mapd -job-dir /var/lib/mapd/jobs         # durable job ledger: a
//	                                         # restart requeues unfinished
//	                                         # jobs and re-serves finished
//	                                         # ones by their old IDs
//	mapd -quota 2 -quota-burst 5             # per-client admission quota;
//	                                         # over-quota submissions get
//	                                         # 429 + Retry-After
//
// Example session:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": {"network": "p2p-Gnutella", "scale": 0.05},
//	  "topology": "grid:8x8", "case": "identity",
//	  "num_hierarchies": 10, "seed": 42}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/topologies
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/mapdsrv"
	"repro/internal/topology"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "pipeline worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "job queue capacity (0 = default)")
		prewarm   = flag.String("prewarm", "", "comma-separated topology specs to build at boot ('paper' = the paper's five)")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		wideThr   = flag.Float64("wide-threshold", 0, "pool-occupancy fraction below which jobs widen onto idle workers (0 = default 0.5, negative = only jobs with \"wide\": true)")
		maxUpload = flag.Int64("max-upload", 0, "request-body / graph-upload size cap in bytes (0 = default 64 MiB)")
		cacheDir  = flag.String("cache-dir", "", "directory of the persistent artifact tier (empty = memory-only; restarts with the same dir are served from disk snapshots)")
		cacheDisk = flag.Int64("cache-disk-bytes", 0, "byte budget of the disk tier's LRU sweep (0 = default 2 GiB)")
		jobDir    = flag.String("job-dir", "", "directory of the durable job ledger (empty = jobs die with the process; restarts with the same dir requeue unfinished jobs and re-serve finished ones)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM/SIGINT shutdown waits for running jobs before exiting")
		quota     = flag.Float64("quota", 0, "per-client submission quota in requests/second, keyed by X-Client-ID or remote host (0 = unlimited); over-quota requests get 429 + Retry-After")
		quotaBur  = flag.Int("quota-burst", 0, "per-client burst above -quota (0 = 2x the rate, minimum 1)")
	)
	flag.Parse()

	for _, d := range []struct{ flag, dir string }{{"-cache-dir", *cacheDir}, {"-job-dir", *jobDir}} {
		if d.dir == "" {
			continue
		}
		// The engine degrades (memory-only cache, non-durable jobs) on a
		// bad directory — it has no error return; an operator who asked
		// for persistence should instead fail fast at boot.
		if err := os.MkdirAll(d.dir, 0o755); err != nil {
			log.Fatal(fmt.Errorf("mapd: %s: %w", d.flag, err))
		}
	}
	eng := engine.New(engine.Options{
		Workers: *workers, QueueCap: *queue, WideThreshold: *wideThr,
		CacheDir: *cacheDir, DiskCacheBytes: *cacheDisk, JobDir: *jobDir,
	})
	if st := eng.Stats().JobStore; st != nil {
		if st.Error != "" {
			log.Fatal(fmt.Errorf("mapd: -job-dir: %s", st.Error))
		}
		log.Printf("mapd: job ledger %s: %d records replayed, %d unfinished jobs requeued", st.Dir, st.WALRecords, st.JobsRecovered)
	}

	if *prewarm != "" {
		specs := strings.Split(*prewarm, ",")
		if *prewarm == "paper" {
			specs = topology.KnownSpecs()
		}
		for _, err := range eng.Cache().Prewarm(specs...) {
			log.Printf("mapd: prewarm: %v", err)
		}
		for _, info := range eng.Cache().Snapshot() {
			log.Printf("mapd: cached %s (%d PEs, dim %d) in %.3fs", info.Spec, info.PEs, info.Dim, info.BuildSeconds)
		}
	}

	if *withPprof {
		log.Printf("mapd: pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: mapdsrv.New(eng, mapdsrv.Config{
			Pprof: *withPprof, MaxBody: *maxUpload,
			QuotaRate: *quota, QuotaBurst: *quotaBur,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mapd: listening on %s (%d workers)", *addr, eng.Workers())
		errCh <- srv.ListenAndServe()
	}()

	// Graceful shutdown on SIGINT/SIGTERM, with or without a job
	// ledger: begin draining first so parked ?wait=1 handlers release
	// with 503 + Retry-After and Shutdown can finish, then stop the
	// listener, then drain the engine — running jobs get -drain-timeout
	// to complete, queued jobs are handed back to the ledger (or, with
	// no -job-dir, finished as interrupted) instead of being silently
	// lost mid-execution.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(fmt.Errorf("mapd: %w", err))
		}
	case sig := <-sigCh:
		log.Printf("mapd: %s: draining (timeout %s)", sig, *drainWait)
		eng.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("mapd: http shutdown: %v", err)
		}
		cancel()
		if err := eng.DrainAndClose(*drainWait); err != nil {
			log.Fatal(fmt.Errorf("mapd: %w", err))
		}
		log.Printf("mapd: drained cleanly")
	}
}
