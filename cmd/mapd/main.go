// Command mapd serves the concurrent mapping engine over HTTP: submit
// partition→map→enhance jobs, poll their status and stage timings, and
// inspect the shared topology cache.
//
// Usage:
//
//	mapd                                     # listen on :8080
//	mapd -addr :9000 -workers 8 -queue 256
//	mapd -prewarm grid:16x16,hypercube:8     # build labelings at boot
//	mapd -cache-dir /var/cache/mapd          # persistent artifact tier:
//	                                         # restarts warm-start from
//	                                         # the previous process's
//	                                         # graphs and partitions
//
// Example session:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": {"network": "p2p-Gnutella", "scale": 0.05},
//	  "topology": "grid:8x8", "case": "identity",
//	  "num_hierarchies": 10, "seed": 42}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/topologies
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/topology"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "pipeline worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "job queue capacity (0 = default)")
		prewarm   = flag.String("prewarm", "", "comma-separated topology specs to build at boot ('paper' = the paper's five)")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		wideThr   = flag.Float64("wide-threshold", 0, "pool-occupancy fraction below which jobs widen onto idle workers (0 = default 0.5, negative = only jobs with \"wide\": true)")
		maxUpload = flag.Int64("max-upload", 0, "request-body / graph-upload size cap in bytes (0 = default 64 MiB)")
		cacheDir  = flag.String("cache-dir", "", "directory of the persistent artifact tier (empty = memory-only; restarts with the same dir are served from disk snapshots)")
		cacheDisk = flag.Int64("cache-disk-bytes", 0, "byte budget of the disk tier's LRU sweep (0 = default 2 GiB)")
	)
	flag.Parse()

	if *cacheDir != "" {
		// The engine degrades to memory-only on a bad cache directory (it
		// has no error return); an operator who asked for persistence
		// should instead fail fast at boot.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatal(fmt.Errorf("mapd: -cache-dir: %w", err))
		}
	}
	eng := engine.New(engine.Options{
		Workers: *workers, QueueCap: *queue, WideThreshold: *wideThr,
		CacheDir: *cacheDir, DiskCacheBytes: *cacheDisk,
	})
	defer eng.Close()

	if *prewarm != "" {
		specs := strings.Split(*prewarm, ",")
		if *prewarm == "paper" {
			specs = topology.KnownSpecs()
		}
		for _, err := range eng.Cache().Prewarm(specs...) {
			log.Printf("mapd: prewarm: %v", err)
		}
		for _, info := range eng.Cache().Snapshot() {
			log.Printf("mapd: cached %s (%d PEs, dim %d) in %.3fs", info.Spec, info.PEs, info.Dim, info.BuildSeconds)
		}
	}

	if *withPprof {
		log.Printf("mapd: pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng, *withPprof, *maxUpload),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	log.Printf("mapd: listening on %s (%d workers)", *addr, eng.Workers())
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("mapd: %w", err))
	}
}
