// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7): Table 1 (network suite), Table 2 (running-time
// quotients), Table 3 (partition times) and Figures 5a-5d (quality
// quotients per experimental case).
//
// Usage:
//
//	experiments -scale 0.02 -reps 3 -nh 10            # quick pass, everything
//	experiments -table 2                              # just Table 2
//	experiments -figure 5c                            # just Figure 5c
//	experiments -scale 1 -reps 5 -nh 50               # paper-sized run (hours)
//	experiments -csv results.csv                      # raw per-instance CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.02, "network scale in (0,1]; 1 = paper-sized instances")
		maxV    = flag.Int("maxv", 60000, "skip networks with more than this many scaled vertices (0 = keep all)")
		maxE    = flag.Int("maxe", 0, "skip networks with more than this many scaled edges (0 = keep all)")
		reps    = flag.Int("reps", 3, "repetitions per instance (paper: 5)")
		nh      = flag.Int("nh", 10, "TIMER hierarchies NH (paper: 50)")
		eps     = flag.Float64("eps", 0.03, "partitioning imbalance")
		seed    = flag.Int64("seed", 1, "base random seed")
		table   = flag.String("table", "", "regenerate only this table (1, 2 or 3)")
		figure  = flag.String("figure", "", "regenerate only this figure (5a, 5b, 5c or 5d)")
		csvPath = flag.String("csv", "", "also write raw per-instance quotients to this CSV file")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := experiments.Config{Reps: *reps, NH: *nh, Epsilon: *eps, Seed: *seed}
	suite, err := experiments.NewSuite(*scale, *maxV, *maxE, cfg)
	if err != nil {
		fatal(err)
	}
	defer suite.Close()
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}

	wantTable := func(t string) bool { return (*table == "" && *figure == "") || *table == t }
	wantFigure := func(f string) bool { return (*table == "" && *figure == "") || *figure == f }

	if wantTable("1") {
		if err := experiments.WriteTable1(os.Stdout, suite.Networks); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	caseForFigure := map[string]experiments.Case{
		"5a": experiments.C1SCOTCH,
		"5b": experiments.C2Identity,
		"5c": experiments.C3GreedyAllC,
		"5d": experiments.C4GreedyMin,
	}
	needCases := map[experiments.Case]bool{}
	if wantTable("2") {
		for _, c := range experiments.Cases() {
			needCases[c] = true
		}
	}
	for fig, c := range caseForFigure {
		if wantFigure(fig) {
			needCases[c] = true
		}
	}

	results := map[experiments.Case][]*experiments.SuiteResult{}
	for _, c := range experiments.Cases() {
		if !needCases[c] {
			continue
		}
		rs, err := suite.RunCase(c, progress)
		if err != nil {
			fatal(err)
		}
		results[c] = rs
	}

	if wantTable("2") {
		if err := experiments.WriteTable2(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, fig := range []string{"5a", "5b", "5c", "5d"} {
		c := caseForFigure[fig]
		if wantFigure(fig) && results[c] != nil {
			if err := experiments.WriteFigure5(os.Stdout, c, results[c]); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}

	if wantTable("3") {
		rows, err := suite.PartitionTimes(progress)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteTable3(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *csvPath != "" && len(results) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteInstanceCSV(f, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
