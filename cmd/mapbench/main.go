// Command mapbench runs the scenario-matrix benchmark harness and
// gates quality regressions against a baseline results file.
//
// Run a matrix and record results:
//
//	mapbench -smoke -out BENCH_results.json       # CI-sized, < 60s
//	mapbench -full -reps 5 -out BENCH_full.json   # paper-style tables
//	mapbench -matrix my-matrix.json -seed 3       # custom matrix file
//	mapbench -smoke -shared-partition             # one partition per rep,
//	                                              # shared across cases
//
// Inspect the expansion without running (derived seeds, partition
// sharing):
//
//	mapbench -smoke -list
//	mapbench -smoke -shared-partition -list
//
// Bench real dataset files next to the generated networks (repeatable;
// each file crosses the matrix's topologies and cases, rows report the
// ingest wall time and peak-footprint estimate in their perf columns):
//
//	mapbench -smoke -graph ca-GrQc.txt -graph web-Google.mtx
//	mapbench -smoke -graph ca-GrQc.txt -graph-lcc   # largest component only
//
// Probe wide mode (one big TIMER-dominant job run sequentially and
// then wide on an idle pool; byte-identical quality is asserted and
// the wall-clock ratio lands in perf.wide_speedup — see the
// "Concurrency & determinism" chapter of DESIGN.md):
//
//	mapbench -smoke -wide                 # probe with NumHierarchies 128
//	mapbench -smoke -wide -wide-nh 512    # longer trial tail
//
// Probe the warm-restart path of the persistent artifact tier (the same
// job set run cold on an empty cache directory and again by a freshly
// constructed engine on the now populated directory; byte-identical
// quality is asserted and the wall-clock ratio lands in
// perf.warm_speedup, the restarted engine's snapshot-serving fraction
// in perf.disk_hit_rate):
//
//	mapbench -smoke -warm                       # temp dir, self-cleaning
//	mapbench -smoke -warm -warm-dir /tmp/cache  # inspectable snapshots
//
// Probe the durable job ledger (an engine drained mid-batch, a second
// engine recovering the batch from the same -job-dir WAL; byte-identical
// recovery and zero-recompute idempotency are asserted, the counters
// land in perf.jobs_recovered and perf.dedup_served):
//
//	mapbench -smoke -restart
//
// Probe the fleet layer (the same job set run through maprouter over
// one replica and over N in-process mapd replicas, then once more with
// the busiest replica killed mid-batch; byte-identical completion is
// asserted, the wall-clock ratio lands in perf.fleet_speedup and the
// recovery count in perf.failovers — see the "Fleet" chapter of
// DESIGN.md):
//
//	mapbench -smoke -fleet                    # 3 replicas
//	mapbench -smoke -fleet -fleet-replicas 5
//
// Gate against a baseline (nonzero exit on regression):
//
//	mapbench -smoke -out BENCH_results.json -baseline BENCH_baseline.json
//	mapbench -baseline BENCH_baseline.json -diff BENCH_results.json
//
// The -diff form compares two existing result files without running
// anything. Quality metrics are deterministic for a fixed matrix and
// seed; performance fields are reported but never gated.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/mapdsrv"
)

func main() {
	var (
		matrixFile = flag.String("matrix", "", "benchmark matrix spec file (JSON); overrides -smoke/-full")
		smoke      = flag.Bool("smoke", false, "run the canonical CI smoke matrix")
		full       = flag.Bool("full", false, "run the full paper-style matrix (hours)")
		reps       = flag.Int("reps", 0, "override the matrix repetition count")
		seed       = flag.Int64("seed", 0, "override the matrix seed")
		workers    = flag.Int("workers", 0, "engine worker-pool size (default GOMAXPROCS)")
		shared     = flag.Bool("shared-partition", false, "share one partition per rep across cases (paper-faithful; quality differs from the default baseline)")
		list       = flag.Bool("list", false, "print the expanded matrix rows with derived seeds instead of running")
		out        = flag.String("out", "", "write results to this JSON file")
		baseline   = flag.String("baseline", "", "gate quality metrics against this results file; exit 1 on regression")
		diffFile   = flag.String("diff", "", "compare this results file against -baseline instead of running")
		tol        = flag.Float64("tol", 0.05, "relative tolerance of the baseline gate")
		quiet      = flag.Bool("q", false, "suppress per-scenario progress")
		graphLCC   = flag.Bool("graph-lcc", false, "restrict -graph datasets to their largest connected component")
		wide       = flag.Bool("wide", false, "also run the wide-mode probe (one big job, sequential vs wide; records perf.wide_speedup)")
		wideNH     = flag.Int("wide-nh", 0, "NumHierarchies of the wide probe job (default 128)")
		warm       = flag.Bool("warm", false, "also run the warm-restart probe (same jobs, cold vs restarted engine on a shared cache dir; records perf.warm_speedup and perf.disk_hit_rate)")
		warmDir    = flag.String("warm-dir", "", "cache directory of the warm probe (default: a fresh temp dir, removed afterwards)")
		restart    = flag.Bool("restart", false, "also run the crash-restart probe (engine drained mid-batch, recovered from its job ledger byte-identical; records perf.jobs_recovered and perf.dedup_served)")
		restartDir = flag.String("restart-dir", "", "job-ledger directory of the restart probe (default: a fresh temp dir, removed afterwards)")
		fleetProbe = flag.Bool("fleet", false, "also run the fleet probe (job set through maprouter over 1 vs N replicas, then with a replica killed mid-batch; records perf.fleet_speedup and perf.failovers)")
		fleetReps  = flag.Int("fleet-replicas", 0, "replica count of the fleet probe (default 3)")
	)
	var graphs stringList
	flag.Var(&graphs, "graph", "add a real dataset file (SNAP/Matrix Market/METIS) as matrix cells; repeatable")
	flag.Parse()

	if *list {
		if err := listRows(*matrixFile, *smoke, *full, *reps, *seed, *shared, graphs, *graphLCC); err != nil {
			fatal(err)
		}
		return
	}

	results, err := obtainResults(*matrixFile, *smoke, *full, *diffFile, graphs, *graphLCC, bench.RunOptions{
		Workers:         *workers,
		Reps:            *reps,
		Seed:            *seed,
		SharedPartition: *shared,
		Progress:        progress(*quiet),
	})
	if err != nil {
		fatal(err)
	}

	if *wide && *diffFile == "" {
		probe, perr := bench.RunWideProbe(bench.WideProbe{
			Workers:        *workers,
			Seed:           *seed,
			NumHierarchies: *wideNH,
		}, progress(*quiet))
		if perr != nil {
			fatal(perr)
		}
		if results.Perf == nil {
			results.Perf = &bench.RunPerf{}
		}
		results.Perf.WideSpeedup = probe.Speedup
		results.Perf.WideWidth = probe.Width
	}

	if *warm && *diffFile == "" {
		probe, perr := bench.RunWarmProbe(bench.WarmProbe{
			Workers: *workers,
			Seed:    *seed,
			Dir:     *warmDir,
		}, progress(*quiet))
		if perr != nil {
			fatal(perr)
		}
		if results.Perf == nil {
			results.Perf = &bench.RunPerf{}
		}
		results.Perf.WarmSpeedup = probe.Speedup
		results.Perf.DiskHitRate = probe.DiskHitRate
	}

	if *restart && *diffFile == "" {
		probe, perr := bench.RunRestartProbe(bench.RestartProbe{
			Workers: *workers,
			Seed:    *seed,
			Dir:     *restartDir,
		}, progress(*quiet))
		if perr != nil {
			fatal(perr)
		}
		if results.Perf == nil {
			results.Perf = &bench.RunPerf{}
		}
		results.Perf.JobsRecovered = probe.Recovered
		results.Perf.DedupServed = probe.DedupServed
	}

	if *fleetProbe && *diffFile == "" {
		// bench cannot import mapdsrv (mapdsrv serves bench's matrices),
		// so the production handler stack is injected from here.
		probe, perr := bench.RunFleetProbe(bench.FleetProbe{
			Replicas: *fleetReps,
			Seed:     *seed,
		}, func(eng *engine.Engine) http.Handler {
			return mapdsrv.New(eng, mapdsrv.Config{})
		}, progress(*quiet))
		if perr != nil {
			fatal(perr)
		}
		if results.Perf == nil {
			results.Perf = &bench.RunPerf{}
		}
		results.Perf.Failovers = probe.Failovers
		results.Perf.FleetSpeedup = probe.FleetSpeedup
	}

	if *out != "" {
		if err := results.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	printSummary(results)

	if results.Summary.Failed > 0 {
		fatal(fmt.Errorf("%d scenarios failed", results.Summary.Failed))
	}
	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		diff := bench.Compare(base, results, *tol)
		printDiff(diff, *baseline, *tol)
		if !diff.OK() {
			os.Exit(1)
		}
	}
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// obtainResults either loads an existing results file (-diff) or runs
// the selected matrix.
func obtainResults(matrixFile string, smoke, full bool, diffFile string, graphs []string, graphLCC bool, opt bench.RunOptions) (*bench.Results, error) {
	if diffFile != "" {
		return bench.ReadFile(diffFile)
	}
	spec, err := selectMatrix(matrixFile, smoke, full)
	if err != nil {
		return nil, err
	}
	addGraphCells(&spec, graphs, graphLCC)
	return bench.Run(spec, opt)
}

// addGraphCells appends -graph dataset files to the matrix as file
// cells; absent files still expand (and are skipped with a count), so a
// stale path is visible rather than silently ignored.
func addGraphCells(spec *bench.Spec, graphs []string, lcc bool) {
	for _, path := range graphs {
		spec.Files = append(spec.Files, bench.FileCell{Path: path, LargestComponent: lcc})
	}
}

func selectMatrix(matrixFile string, smoke, full bool) (bench.Spec, error) {
	switch {
	case matrixFile != "":
		return bench.LoadSpec(matrixFile)
	case smoke && full:
		return bench.Spec{}, fmt.Errorf("-smoke and -full are mutually exclusive")
	case smoke:
		return bench.Smoke(), nil
	case full:
		return bench.Paper(), nil
	default:
		return bench.Spec{}, fmt.Errorf("pick a matrix: -smoke, -full or -matrix FILE")
	}
}

// listRows prints the fully-expanded matrix — one line per job with
// its derived seeds and graph instance key — without running anything:
// the ground truth for "which jobs share a partition artifact".
func listRows(matrixFile string, smoke, full bool, reps int, seed int64, shared bool, graphs []string, graphLCC bool) error {
	spec, err := selectMatrix(matrixFile, smoke, full)
	if err != nil {
		return err
	}
	addGraphCells(&spec, graphs, graphLCC)
	if reps > 0 {
		spec.Reps = reps
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if shared {
		spec.SharedPartition = true
	}
	rows, skipped, err := bench.Rows(spec)
	if err != nil {
		return err
	}
	mode := "default"
	if spec.SharedPartition {
		mode = "shared-partition"
	}
	fmt.Printf("matrix %s (%s): %d jobs (%d cells skipped)\n", spec.Name, mode, len(rows), skipped)
	fmt.Printf("%-4s %-45s %-24s %-3s %10s %14s\n", "#", "scenario", "graph", "rep", "seed", "partition_seed")
	for i, r := range rows {
		fmt.Printf("%-4d %-45s %-24s %-3d %10d %14d\n", i, r.Name, r.GraphKey, r.Rep, r.Seed, r.PartitionSeed)
	}
	return nil
}

func progress(quiet bool) func(string) {
	if quiet {
		return nil
	}
	return func(line string) { fmt.Fprintln(os.Stderr, line) }
}

func printSummary(r *bench.Results) {
	s := r.Summary
	fmt.Printf("matrix %s: %d scenarios (%d skipped, %d failed), %d jobs\n",
		r.Matrix, s.Scenarios, s.Skipped, s.Failed, s.Jobs)
	fmt.Printf("  qCoco^gm %.4f   qCut^gm %.4f\n", s.GeoCocoQuotient, s.GeoCutQuotient)
	cases := make([]string, 0, len(s.CaseGeoCocoQuotient))
	for c := range s.CaseGeoCocoQuotient {
		cases = append(cases, c)
	}
	sort.Strings(cases)
	for _, c := range cases {
		fmt.Printf("  %-12s qCoco^gm %.4f\n", c, s.CaseGeoCocoQuotient[c])
	}
	if r.Perf != nil {
		fmt.Printf("  %.1fs wall, %.2f jobs/sec on %d workers\n",
			r.Perf.WallSeconds, r.Perf.JobsPerSec, r.Perf.Workers)
		fmt.Printf("  %.0f ns/job   %.0f allocs/job   %.0f bytes/job\n",
			r.Perf.NsPerJob, r.Perf.AllocsPerJob, r.Perf.BytesPerJob)
		fmt.Printf("  artifact hit rate %.2f   partitions %d computed / %d reused\n",
			r.Perf.ArtifactHitRate, r.Perf.PartitionsComputed, r.Perf.PartitionsReused)
		if r.Perf.WideSpeedup > 0 {
			fmt.Printf("  wide probe: %.2fx speedup at width %d\n",
				r.Perf.WideSpeedup, r.Perf.WideWidth)
		}
		if r.Perf.WarmSpeedup > 0 {
			fmt.Printf("  warm probe: %.2fx restart speedup, disk hit rate %.2f\n",
				r.Perf.WarmSpeedup, r.Perf.DiskHitRate)
		}
		if r.Perf.JobsRecovered > 0 {
			fmt.Printf("  restart probe: %d jobs recovered byte-identical, %d duplicates ledger-served\n",
				r.Perf.JobsRecovered, r.Perf.DedupServed)
		}
		if r.Perf.FleetSpeedup > 0 {
			fmt.Printf("  fleet probe: %.2fx fleet speedup, %d failovers survived byte-identical\n",
				r.Perf.FleetSpeedup, r.Perf.Failovers)
		}
	}
	// Base-vs-enhancement split: the two stages this repository's hot
	// paths target (PR 3 made TIMER allocation-free; the base stage got
	// the same treatment), averaged across scenarios.
	var baseMs, timerMs float64
	counted := 0
	for i := range r.Scenarios {
		if p := r.Scenarios[i].Perf; p != nil {
			baseMs += p.BaseNsPerJob.Mean / 1e6
			timerMs += p.TimerSeconds.Mean * 1e3
			counted++
		}
	}
	if counted > 0 {
		fmt.Printf("  base %.2f ms/job   enhance %.2f ms/job (scenario means)\n",
			baseMs/float64(counted), timerMs/float64(counted))
	}
}

func printDiff(d *bench.Diff, baseline string, tol float64) {
	fmt.Printf("baseline %s (tolerance %.0f%%): %d metrics compared, %d improved\n",
		baseline, tol*100, d.Compared, d.Improved)
	for _, m := range d.Missing {
		fmt.Printf("  MISSING %s\n", m)
	}
	for _, reg := range d.Regressions {
		fmt.Printf("  REGRESSION %s\n", reg)
	}
	if d.OK() {
		fmt.Println("  no regressions")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapbench:", err)
	os.Exit(1)
}
