package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// TestIntegrationAllCasesAllTopologies runs the complete pipeline —
// generate, partition/map with every baseline, enhance with TIMER,
// validate — on every paper topology. This is the repository's
// cross-module smoke test.
func TestIntegrationAllCasesAllTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline across 20 case/topology pairs")
	}
	ga := netgen.Generate(netgen.RMAT, 1600, 6500, 99)
	cfg := experiments.Config{Reps: 1, NH: 3, Epsilon: 0.03, Seed: 9}
	for _, pt := range topology.PaperTopologies() {
		topo := pt.MustBuild()
		if ga.N() <= topo.P() {
			t.Fatalf("test instance too small for %s", topo.Name)
		}
		for _, c := range experiments.Cases() {
			m, err := experiments.RunRep(ga, topo, c, cfg, 9)
			if err != nil {
				t.Fatalf("%s on %s: %v", c, topo.Name, err)
			}
			if m.CocoAfter > m.CocoBefore {
				t.Errorf("%s on %s: Coco worsened %d -> %d", c, topo.Name, m.CocoBefore, m.CocoAfter)
			}
			if m.CutBefore <= 0 || m.CutAfter <= 0 {
				t.Errorf("%s on %s: degenerate cuts %d -> %d", c, topo.Name, m.CutBefore, m.CutAfter)
			}
		}
	}
}

// TestIntegrationImprovementShape verifies the paper's headline ordering
// on a single mid-size instance: the generic DRB baseline leaves more
// room for TIMER than the topology-aware greedies.
func TestIntegrationImprovementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-case comparison")
	}
	ga := netgen.Generate(netgen.RMAT, 2500, 11000, 5)
	topo, err := Grid(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Reps: 1, NH: 8, Epsilon: 0.03, Seed: 4}
	gain := map[experiments.Case]float64{}
	for _, c := range experiments.Cases() {
		m, err := experiments.RunRep(ga, topo, c, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		gain[c] = 1 - float64(m.CocoAfter)/float64(m.CocoBefore)
	}
	// c1 (DRB) must see a strictly larger improvement than the greedy
	// baselines c3/c4 (paper Section 7.2: "TIMER is able to decrease the
	// communication costs significantly for c1, even more than in the
	// other cases").
	if gain[experiments.C1SCOTCH] <= gain[experiments.C3GreedyAllC] ||
		gain[experiments.C1SCOTCH] <= gain[experiments.C4GreedyMin] {
		t.Errorf("improvement ordering violated: c1=%.3f c2=%.3f c3=%.3f c4=%.3f",
			gain[experiments.C1SCOTCH], gain[experiments.C2Identity],
			gain[experiments.C3GreedyAllC], gain[experiments.C4GreedyMin])
	}
	for c, g := range gain {
		if g < 0 {
			t.Errorf("%s: negative improvement %.3f", c, g)
		}
	}
}
