package repro

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	ga, err := GenerateNetwork("p2p-Gnutella", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(ga, topo.P(), 0.03, 1)
	if err != nil {
		t.Fatal(err)
	}
	assign := MapIdentity(part.Part)
	if err := ValidateMapping(ga, assign, topo, 0.03); err != nil {
		t.Fatal(err)
	}
	res, err := Enhance(ga, topo, assign, TimerOptions{NumHierarchies: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CocoAfter > res.CocoBefore {
		t.Errorf("TIMER worsened Coco: %d -> %d", res.CocoBefore, res.CocoAfter)
	}
	if Coco(ga, res.Assign, topo) != res.CocoAfter {
		t.Error("reported CocoAfter disagrees with recomputation")
	}
}

func TestFacadeBaselines(t *testing.T) {
	ga, err := GenerateNetwork("PGPgiantcompo", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(ga, topo.P(), 0.03, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mk   func() ([]int32, error)
	}{
		{"identity", func() ([]int32, error) { return MapIdentity(part.Part), nil }},
		{"allc", func() ([]int32, error) { return MapGreedyAllC(ga, part.Part, topo) }},
		{"min", func() ([]int32, error) { return MapGreedyMin(ga, part.Part, topo) }},
		{"drb", func() ([]int32, error) { return MapDRB(ga, topo, DRBConfig{Seed: 2, Fast: true}) }},
	} {
		assign, err := tc.mk()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := ValidateMapping(ga, assign, topo, -1); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if Coco(ga, assign, topo) <= 0 || Cut(ga, assign) <= 0 {
			t.Fatalf("%s: degenerate metrics", tc.name)
		}
	}
}

func TestFacadeTopologies(t *testing.T) {
	for _, name := range []string{"grid16x16", "grid8x8x8", "torus16x16", "torus8x8x8", "8-dimHQ"} {
		topo, err := PaperTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		if topo.P() != 256 && topo.P() != 512 {
			t.Errorf("%s: %d PEs", name, topo.P())
		}
	}
	if _, err := PaperTopology("nope"); err == nil {
		t.Error("unknown topology accepted")
	}
	tor, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tor.P() != 16 {
		t.Error("torus size wrong")
	}
	if _, err := TopologyFromGraph("K3", Complete3()); err == nil {
		t.Error("K3 recognized as partial cube")
	}
}

// Complete3 builds K3 (not a partial cube) for the recognition test.
func Complete3() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	return b.Build()
}

func TestFacadeGraphIO(t *testing.T) {
	ga, err := GenerateNetwork("as-22july06", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.metis")
	if err := ga.WriteMETISFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ga.N() || back.M() != ga.M() {
		t.Errorf("round trip changed graph: %v -> %v", ga, back)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkNames(t *testing.T) {
	names := NetworkNames()
	if len(names) != 15 {
		t.Fatalf("%d networks, want 15", len(names))
	}
	if _, err := GenerateNetwork("not-a-network", 0.1, 1); err == nil {
		t.Error("unknown network accepted")
	}
}
