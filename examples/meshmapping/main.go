// Meshmapping: a CFD-style structured mesh mapped onto a 3D torus.
//
// Numerical simulations exchange halo data between neighboring mesh
// cells, so the application graph is itself mesh-like; supercomputers
// with torus interconnects (the paper cites several) want such meshes
// embedded with locality. This example compares the SCOTCH-style DRB
// baseline with its TIMER-enhanced version (the paper's case c1).
//
// Run with: go run ./examples/meshmapping
package main

import (
	"fmt"
	"log"

	"repro"
)

// buildMesh creates a 3D structured mesh of nx×ny×nz cells with 6-point
// stencil communication, anisotropic face weights, and an adaptively
// refined octant: each cell of the subregion x,y,z < nx/2 is split into
// 8 children that communicate with their parent's neighbors — the kind
// of irregularity adaptive mesh refinement produces around a shock or
// boundary layer, and what makes topology mapping non-trivial.
func buildMesh(nx, ny, nz int) *repro.Graph {
	base := nx * ny * nz
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	refined := func(x, y, z int) bool { return x < nx/2 && y < ny/2 && z < nz/2 }
	// Children of refined cells are appended after the base cells.
	childBase := make(map[int]int)
	next := base
	for z := 0; z < nz/2; z++ {
		for y := 0; y < ny/2; y++ {
			for x := 0; x < nx/2; x++ {
				childBase[id(x, y, z)] = next
				next += 8
			}
		}
	}
	b := repro.NewBuilder(next)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				if x+1 < nx {
					b.AddEdge(v, id(x+1, y, z), 4)
				}
				if y+1 < ny {
					b.AddEdge(v, id(x, y+1, z), 2)
				}
				if z+1 < nz {
					b.AddEdge(v, id(x, y, z+1), 1)
				}
				if refined(x, y, z) {
					cb := childBase[v]
					for c := 0; c < 8; c++ {
						b.AddEdge(v, cb+c, 6) // parent-child restriction/prolongation
						if c > 0 {
							b.AddEdge(cb+c-1, cb+c, 3) // sibling halo
						}
					}
				}
			}
		}
	}
	return b.Build()
}

func main() {
	mesh := buildMesh(24, 24, 24)
	fmt.Printf("mesh: %d cells, %d halo-exchange pairs\n", mesh.N(), mesh.M())

	topo, err := repro.Torus(8, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s, %d PEs\n", topo.Name, topo.P())

	// Case c1: initial mapping by dual recursive bipartitioning.
	assign, err := repro.MapDRB(mesh, topo, repro.DRBConfig{Epsilon: 0.03, Seed: 7, Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	before := repro.Coco(mesh, assign, topo)
	fmt.Printf("DRB mapping:   Coco=%d Cut=%d\n", before, repro.Cut(mesh, assign))

	res, err := repro.Enhance(mesh, topo, assign, repro.TimerOptions{NumHierarchies: 25, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after TIMER:   Coco=%d Cut=%d (%d hierarchies kept, %d swaps)\n",
		res.CocoAfter, repro.Cut(mesh, res.Assign), res.HierarchiesKept, res.SwapsApplied)
	fmt.Printf("communication cost reduced by %.1f%%\n",
		100*(1-float64(res.CocoAfter)/float64(before)))
}
