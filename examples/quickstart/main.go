// Quickstart: the smallest end-to-end TIMER pipeline.
//
// It generates a complex network, partitions it for a 16×16 grid of
// processing elements, maps blocks onto PEs with the IDENTITY baseline
// and lets TIMER enhance the mapping (the paper's experimental case c2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A scaled-down stand-in for the paper's p2p-Gnutella instance.
	ga, err := repro.GenerateNetwork("p2p-Gnutella", 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application graph: %d vertices, %d edges\n", ga.N(), ga.M())

	// The 2DGrid(16×16) processor graph: a partial cube with 30 convex
	// cuts, so every PE gets a 30-digit bitvector label and hop distance
	// equals Hamming distance.
	topo, err := repro.Grid(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s, %d PEs, label length %d\n", topo.Name, topo.P(), topo.Dim)

	// Balanced 256-way partition (3% imbalance, like the paper).
	part, err := repro.Partition(ga, topo.P(), 0.03, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition: cut=%d, balance=%.3f\n", part.Cut, part.Balance)

	// IDENTITY mapping: block i lives on PE i.
	assign := repro.MapIdentity(part.Part)
	fmt.Printf("initial mapping:  Coco=%d  Cut=%d\n",
		repro.Coco(ga, assign, topo), repro.Cut(ga, assign))

	// TIMER: 50 random hierarchies of label swaps.
	res, err := repro.Enhance(ga, topo, assign, repro.TimerOptions{NumHierarchies: 50, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after TIMER:      Coco=%d  Cut=%d\n", res.CocoAfter, repro.Cut(ga, res.Assign))
	fmt.Printf("Coco improved by %.1f%% (%d hierarchies kept, %d swaps)\n",
		100*(1-float64(res.CocoAfter)/float64(res.CocoBefore)),
		res.HierarchiesKept, res.SwapsApplied)

	// TIMER preserves the balance of the input mapping exactly.
	if err := repro.ValidateMapping(ga, res.Assign, topo, 0.03); err != nil {
		log.Fatal(err)
	}
	fmt.Println("enhanced mapping is valid and balanced")
}
