// Treetopology: mapping onto a hierarchical (tree) interconnect.
//
// The paper's partial-cube class includes all trees, which model the
// switch hierarchies of small clusters: a core switch, rack switches,
// and nodes per rack, where communication between racks pays extra
// hops. Every tree edge is its own convex cut, so the labels directly
// encode the rack hierarchy, and TIMER's label swaps move whole task
// groups between racks when that pays off.
//
// Run with: go run ./examples/treetopology
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two-level cluster: core switch 0, 4 rack switches, 7 nodes each
	// (37 vertices; trees need one label digit per edge, so small trees
	// only — a 64-edge limit comes with the 64-digit labels).
	const racks, perRack = 4, 7
	parent := make([]int, 1+racks+racks*perRack)
	for r := 0; r < racks; r++ {
		parent[1+r] = 0
		for i := 0; i < perRack; i++ {
			parent[1+racks+r*perRack+i] = 1 + r
		}
	}
	topo, err := repro.TreeTopology("cluster4x7", parent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s, %d PEs, %d convex cuts (tree edges)\n", "cluster4x7", topo.P(), topo.Dim)

	// Workload: 4 tightly-coupled task groups plus background chatter —
	// each group should end up inside one rack.
	ga, err := repro.GenerateNetwork("PGPgiantcompo", 0.05, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks, %d communication pairs\n", ga.N(), ga.M())

	part, err := repro.Partition(ga, topo.P(), 0.03, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Two initial placements of the same partition: the partitioner's
	// natural block order, and a "striped" scheduler that scatters
	// consecutive blocks across racks (what a locality-oblivious
	// scheduler produces).
	placements := []struct {
		name string
		nu   func(b int32) int32
	}{
		{"identity ", func(b int32) int32 { return b }},
		{"striped  ", func(b int32) int32 { return (b*7 + 3) % int32(topo.P()) }},
	}
	for _, pl := range placements {
		assign := make([]int32, ga.N())
		for v, b := range part.Part {
			assign[v] = pl.nu(b)
		}
		before := repro.Coco(ga, assign, topo)
		res, err := repro.Enhance(ga, topo, assign, repro.TimerOptions{NumHierarchies: 40, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := repro.SimulateRouting(ga, res.Assign, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s Coco %5d -> %5d (%4.1f%% better, %2d hierarchies kept), max link load %d\n",
			pl.name, before, res.CocoAfter,
			100*(1-float64(res.CocoAfter)/float64(before)), res.HierarchiesKept, sim.MaxLinkLoad)
	}
}
