// Hierarchies: reproduces the paper's Figure 2 — two opposite
// hierarchies of the 4-dimensional hypercube induced by permutations of
// the label digits.
//
// Every permutation π of label positions turns the partial-cube labeling
// into a hierarchy: group PEs whose permuted labels agree on the first i
// digits. The identity and the digit-reversing permutation give the two
// "opposite" hierarchies shown in the figure; TIMER's power comes from
// searching across many such random hierarchies.
//
// Run with: go run ./examples/hierarchies
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
	"repro/internal/bitvec"
)

func main() {
	topo, err := repro.Hypercube(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d PEs, labels of %d digits\n\n", topo.Name, topo.P(), topo.Dim)

	show("hierarchy for pi = (1,2,3,4)  [identity]", topo, bitvec.Identity(4))
	fmt.Println()
	show("hierarchy for pi = (4,3,2,1)  [opposite]", topo, bitvec.Reverse(4))
}

// show prints the hierarchy level by level: at level i, PEs group by the
// first i digits of the permuted label (digits are printed MSB-first as
// in the paper, so "first" digits are the most significant ones).
func show(title string, topo *repro.Topology, pi bitvec.Permutation) {
	dim := topo.Dim
	fmt.Println(title)
	for level := 0; level <= dim; level++ {
		groups := map[string][]string{}
		for pe := 0; pe < topo.P(); pe++ {
			perm := pi.Apply(topo.Labels[pe])
			s := perm.String(dim)
			// Group key: the level most significant digits; the rest shown
			// as the wildcard "x" of the figure.
			key := s[:level] + strings.Repeat("x", dim-level)
			groups[key] = append(groups[key], topo.Labels[pe].String(dim))
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  level %d (%2d groups): ", dim-level, len(keys))
		if len(keys) <= 4 {
			for _, k := range keys {
				sort.Strings(groups[k])
				fmt.Printf("%s{%s} ", k, strings.Join(groups[k], ","))
			}
		} else {
			fmt.Printf("%s ... %s", keys[0], keys[len(keys)-1])
		}
		fmt.Println()
	}
}
