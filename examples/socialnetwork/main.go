// Socialnetwork: parallel complex-network analytics placement.
//
// The paper's motivating application is massive network analytics on
// distributed-memory systems: partition a social network across PEs,
// then place the blocks so that heavily-communicating blocks sit on
// nearby PEs. This example runs the paper's cases c2 (IDENTITY), c3
// (GREEDYALLC) and c4 (GREEDYMIN) on one network/topology pair and shows
// what TIMER adds on top of each.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	ga, err := repro.GenerateNetwork("soc-Slashdot0902", 0.2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d interactions\n", ga.N(), ga.M())

	topo, err := repro.Grid(16, 16)
	if err != nil {
		log.Fatal(err)
	}

	part, err := repro.Partition(ga, topo.P(), 0.03, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition: cut=%d balance=%.3f\n\n", part.Cut, part.Balance)

	type baseline struct {
		name string
		mk   func() ([]int32, error)
	}
	baselines := []baseline{
		{"IDENTITY", func() ([]int32, error) { return repro.MapIdentity(part.Part), nil }},
		{"GREEDYALLC", func() ([]int32, error) { return repro.MapGreedyAllC(ga, part.Part, topo) }},
		{"GREEDYMIN", func() ([]int32, error) { return repro.MapGreedyMin(ga, part.Part, topo) }},
	}
	fmt.Printf("%-11s %12s %12s %9s\n", "baseline", "Coco before", "Coco after", "gain")
	for _, bl := range baselines {
		assign, err := bl.mk()
		if err != nil {
			log.Fatal(err)
		}
		before := repro.Coco(ga, assign, topo)
		res, err := repro.Enhance(ga, topo, assign, repro.TimerOptions{NumHierarchies: 20, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %12d %12d %8.1f%%\n",
			bl.name, before, res.CocoAfter, 100*(1-float64(res.CocoAfter)/float64(before)))
	}
}
