package repro_test

import (
	"fmt"

	"repro"
)

// ExampleEnhance shows the core enhancement loop on a tiny instance:
// eight tasks in two squads, mapped badly onto a 2×2 grid, fixed by
// TIMER.
func ExampleEnhance() {
	// Two 4-cliques with one weak link between them.
	b := repro.NewBuilder(8)
	for _, sq := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(sq[i], sq[j], 10)
			}
		}
	}
	b.AddEdge(0, 4, 1)
	ga := b.Build()

	topo, _ := repro.Grid(2, 2)
	// A deliberately bad balanced mapping: squads interleaved over PEs.
	bad := []int32{0, 1, 2, 3, 0, 1, 2, 3}

	res, _ := repro.Enhance(ga, topo, bad, repro.TimerOptions{NumHierarchies: 20, Seed: 1})
	fmt.Println("improved:", res.CocoAfter < res.CocoBefore)
	// Output:
	// improved: true
}

// ExampleGrid demonstrates the partial-cube property of mesh
// topologies: hop distance equals Hamming distance of the labels.
func ExampleGrid() {
	topo, _ := repro.Grid(4, 4)
	fmt.Println("PEs:", topo.P())
	fmt.Println("label digits:", topo.Dim)
	// Opposite corners of a 4x4 grid are 6 hops apart.
	fmt.Println("corner distance:", topo.Distance(0, 15))
	// Output:
	// PEs: 16
	// label digits: 6
	// corner distance: 6
}

// ExamplePartition shows the KaHIP-style multilevel partitioner.
func ExamplePartition() {
	ga, _ := repro.GenerateNetwork("p2p-Gnutella", 0.05, 7)
	res, _ := repro.Partition(ga, 8, 0.03, 7)
	fmt.Println("blocks:", res.K)
	fmt.Println("balanced:", res.Balance <= 1.03)
	fmt.Println("cut positive:", res.Cut > 0)
	// Output:
	// blocks: 8
	// balanced: true
	// cut positive: true
}
